// Shared helpers for the experiment benches: run an algorithm fleet over a
// pattern and hand back the trace, common measurement utilities, and a
// machine-readable JSON emitter so the perf trajectory of every bench can
// be tracked across PRs.
#pragma once

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/api.hpp"

namespace rfd::bench {

/// Accumulates flat records and writes them as `BENCH_<name>.json` in the
/// working directory, next to the human-readable tables. Usage:
///
///   JsonReport json("e11_cluster");
///   json.row("scaling")
///       .str("topology", "gossip").num("n", 256)
///       .num("msgs_per_node_per_s", 31.2);
///   ...
///   json.write();
///
/// Values are doubles or strings; NaN/inf become null so downstream
/// tooling never sees bare `nan` tokens.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport& row(const std::string& section) {
    rows_.emplace_back();
    return str("section", section);
  }

  JsonReport& str(const std::string& key, const std::string& value) {
    current().push_back("\"" + escape(key) + "\": \"" + escape(value) +
                        "\"");
    return *this;
  }

  JsonReport& num(const std::string& key, double value) {
    char buf[64];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.10g", value);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    current().push_back("\"" + escape(key) + "\": " + buf);
    return *this;
  }

  JsonReport& boolean(const std::string& key, bool value) {
    current().push_back("\"" + escape(key) +
                        (value ? "\": true" : "\": false"));
    return *this;
  }

  /// Environment facts (host CPU count, pinning, toolchain) recorded once
  /// per report in a top-level `"env"` object, so downstream tooling can
  /// tell a slow run from a small machine.
  JsonReport& env_str(const std::string& key, const std::string& value) {
    env_.push_back("\"" + escape(key) + "\": \"" + escape(value) + "\"");
    return *this;
  }

  JsonReport& env_num(const std::string& key, double value) {
    char buf[64];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.10g", value);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    env_.push_back("\"" + escape(key) + "\": " + buf);
    return *this;
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes the accumulated records; returns false (and prints a warning)
  /// if the file cannot be opened.
  bool write() const {
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path().c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", escape(name_).c_str());
    if (!env_.empty()) {
      std::fprintf(f, "  \"env\": {");
      for (std::size_t i = 0; i < env_.size(); ++i) {
        std::fprintf(f, "%s%s", i == 0 ? "" : ", ", env_[i].c_str());
      }
      std::fprintf(f, "},\n");
    }
    std::fprintf(f, "  \"records\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      for (std::size_t j = 0; j < rows_[i].size(); ++j) {
        std::fprintf(f, "%s%s", j == 0 ? "" : ", ", rows_[i][j].c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path().c_str(), rows_.size());
    return true;
  }

 private:
  /// Fields added before the first row() open one implicitly.
  std::vector<std::string>& current() {
    if (rows_.empty()) rows_.emplace_back();
    return rows_.back();
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::string> env_;
  std::vector<std::vector<std::string>> rows_;
};

template <typename Algo>
sim::Trace run_fleet(const std::string& detector,
                     const model::FailurePattern& pattern, std::uint64_t seed,
                     Tick horizon, sim::SimConfig config = {}) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector(detector).factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<Algo>(n, 100 + p));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(mix_seed(seed, 2)),
                     config);
  sim.run_for(horizon);
  return sim.trace();
}

/// Tick of the last decision of `instance` (or -1).
inline Tick last_decision_tick(const sim::Trace& trace, InstanceId instance) {
  Tick last = -1;
  for (const auto& d : trace.decisions_of_instance(instance)) {
    last = std::max(last, d.time);
  }
  return last;
}

/// Tick of the first decision of `instance` (or -1).
inline Tick first_decision_tick(const sim::Trace& trace, InstanceId instance) {
  Tick first = -1;
  for (const auto& d : trace.decisions_of_instance(instance)) {
    if (first < 0 || d.time < first) first = d.time;
  }
  return first;
}

}  // namespace rfd::bench
