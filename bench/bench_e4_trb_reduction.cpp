// Experiment E4: Proposition 5.1 - emulating P from TRB.
//
// Rounds of TRB instances run continuously; a nil delivery for instance
// (i, *) adds p_i to output(P). The table reports detection latency and
// accuracy of the nil-driven emulation against ground truth, per round
// pacing.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

struct TrbEmulationStats {
  Summary detection_ticks;
  std::int64_t false_suspicions = 0;
  std::int64_t crashes_detected = 0;
  std::int64_t crashes_missed = 0;
  Summary rounds_completed;
};

TrbEmulationStats measure(Tick gap, InstanceId rounds, std::uint64_t seed) {
  const ProcessId n = 4;
  TrbEmulationStats stats;
  model::PatternSweep sweep(n, mix_seed(seed, 0xe4));
  sweep.with_single_crashes({400, 1800}).with_cascades(2, 700, 800);
  for (const auto& pattern : sweep.patterns()) {
    const auto oracle = fd::find_detector("P").factory(pattern, seed);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(std::make_unique<red::TrbToP>(n, rounds, gap));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(seed + 13));
    sim.run_for(12'000);

    for (ProcessId p = 0; p < n; ++p) {
      if (!pattern.correct().contains(p)) continue;
      const auto& reduction = dynamic_cast<red::TrbToP&>(sim.automaton(p));
      stats.rounds_completed.add(
          static_cast<double>(reduction.rounds_completed()));
      ProcessSet seen(n);
      for (const auto& [tick, victim] : reduction.suspicion_timeline()) {
        seen.insert(victim);
        const Tick crash = pattern.crash_tick(victim);
        if (crash == kNever || tick < crash) {
          ++stats.false_suspicions;
        } else {
          stats.detection_ticks.add(static_cast<double>(tick - crash));
        }
      }
      pattern.faulty().for_each([&](ProcessId dead) {
        if (seen.contains(dead)) {
          ++stats.crashes_detected;
        } else {
          ++stats.crashes_missed;
        }
      });
    }
  }
  return stats;
}

void BM_TrbReductionRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(400, 12, 5).crashes_detected);
  }
}
BENCHMARK(BM_TrbReductionRun)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E4: emulating P from TRB nil deliveries (Prop 5.1), n=4,"
              "\nbase detector P, horizon 12000 ticks\n");

  Table table({"round gap", "rounds", "crashes detected", "missed",
               "false susp.", "detect p50 (ticks)", "detect p99 (ticks)",
               "rounds done (mean)"});
  for (const Tick gap : {0, 200, 500, 1000}) {
    const InstanceId rounds =
        gap == 0 ? 24 : static_cast<InstanceId>(10'000 / gap + 2);
    const auto stats = measure(gap, rounds, 17);
    table.add_row({Table::num(gap), Table::num(rounds),
                   Table::num(stats.crashes_detected),
                   Table::num(stats.crashes_missed),
                   Table::num(stats.false_suspicions),
                   Table::fixed(stats.detection_ticks.percentile(0.5), 1),
                   Table::fixed(stats.detection_ticks.percentile(0.99), 1),
                   Table::fixed(stats.rounds_completed.mean(), 1)});
  }
  table.print("E4: nil-driven emulation quality vs round pacing");

  std::printf(
      "\nReading: nil deliveries never fire for live senders (strong"
      "\naccuracy) and every crash eventually surfaces as a nil in a later"
      "\nround (strong completeness); latency tracks the round pacing.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
