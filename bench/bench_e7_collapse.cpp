// Experiment E7: Section 6.3 - S ∩ R ⊂ P, executed.
//
// For every detector: find false suspicions in sampled histories, run the
// paper's construction (transfer the prefix to the pattern F' where
// everyone but the victim crashes next tick), and check whether weak
// accuracy survives there. Realistic detectors always transfer (their
// false suspicions disqualify them from S); the clairvoyant Strong
// detector escapes the construction only because its histories refuse to
// transfer - i.e., because it is not realistic.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

void BM_CollapseAudit(benchmark::State& state) {
  model::PatternSweep sweep(5, 0xe7);
  sweep.with_all_correct().with_random(4, 0, 3, 120);
  const std::vector<std::uint64_t> seeds{1, 2, 3};
  for (auto _ : state) {
    const auto audit = red::audit_strong_realistic(
        fd::find_detector("<>P").factory, sweep.patterns(), seeds, 160);
    benchmark::DoNotOptimize(audit.histories);
  }
}
BENCHMARK(BM_CollapseAudit)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E7: the Strong/Perfect collapse within the realistic space"
              "\n(Section 6.3), n=5, horizon 200 ticks, 6 seeds\n");

  model::PatternSweep sweep(5, 0x63);
  sweep.with_all_correct()
      .with_single_crashes({20, 80})
      .with_random(6, 0, 3, 150);
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};

  Table table({"detector", "histories", "w/ false suspicion",
               "prefix transfers to F'", "weak accuracy broken in F'",
               "collapse verdict"});
  for (const auto& spec : fd::standard_detectors()) {
    if (spec.name == "Marabout") {
      // M has no false suspicions in the accuracy sense used here only
      // when nobody is faulty; it suspects future-faulty processes, which
      // IS a false suspicion - included for completeness.
    }
    const auto audit = red::audit_strong_realistic(spec.factory,
                                                   sweep.patterns(), seeds,
                                                   200);
    std::string verdict;
    if (audit.with_false_suspicion == 0) {
      verdict = "already Perfect";
    } else if (audit.consistent_with_collapse()) {
      verdict = "collapses (not in S)";
    } else {
      verdict = spec.realistic ? "INCONSISTENT" : "escapes via clairvoyance";
    }
    table.add_row({spec.name, Table::num(audit.histories),
                   Table::num(audit.with_false_suspicion),
                   Table::num(audit.transfers),
                   Table::num(audit.weak_accuracy_broken), verdict});
  }
  table.print("E7: the Section 6.3 construction, per detector");

  std::printf(
      "\nReading: realistic detectors either have no false suspicions (they"
      "\nare Perfect) or every false suspicion transfers to the everybody-"
      "\nelse-crashes continuation and kills weak accuracy (they are not"
      "\nStrong). Only the clairvoyant S(cheat) - and the Marabout - sit in"
      "\nS \\ P, and neither is realistic: S ∩ R ⊂ P.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
