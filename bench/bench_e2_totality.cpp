// Experiment E2: Lemma 4.1 - totality.
//
// Audits the causal chain of every decision event: a total decision heard
// (transitively) from every process alive at decision time. The table
// contrasts the realistic-detector consensus (always total) with the three
// ways around totality: a clairvoyant detector, a majority-quorum
// algorithm, and the non-uniform chain algorithm.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

struct Scenario {
  std::string label;
  std::string detector;
  std::string algo;  // "ct_strong" | "ct_rotating" | "cr_chain"
  bool block_victim;
};

red::TotalityReport run_scenario(const Scenario& s, std::uint64_t seed) {
  const ProcessId n = 5;
  const auto pattern = model::all_correct(n);
  sim::SimConfig config;
  if (s.block_victim) {
    config.blocks.push_back({/*src=*/4, /*dst=*/-1, /*until=*/6000});
  }
  sim::Trace trace = [&] {
    if (s.algo == "ct_strong") {
      return bench::run_fleet<algo::CtStrongConsensus>(s.detector, pattern,
                                                       seed, 10'000, config);
    }
    if (s.algo == "ct_rotating") {
      return bench::run_fleet<algo::CtRotatingConsensus>(s.detector, pattern,
                                                         seed, 10'000, config);
    }
    return bench::run_fleet<algo::CrChainConsensus>(s.detector, pattern, seed,
                                                    10'000, config);
  }();
  return red::check_totality(trace, 0);
}

void BM_CausalChainQuery(benchmark::State& state) {
  const auto pattern = model::all_correct(5);
  const auto trace = bench::run_fleet<algo::CtStrongConsensus>(
      "P", pattern, 1, 10'000);
  const EventId last = trace.num_events() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.causal_message_senders(last));
  }
}
BENCHMARK(BM_CausalChainQuery)->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E2: totality of decision events (Lemma 4.1), n=5, all-correct"
              "\npattern, 8 seeds each; 'blocked victim' delays every message"
              "\nfrom p4 past the decision window\n");

  const std::vector<Scenario> scenarios = {
      {"CT-S + P", "P", "ct_strong", false},
      {"CT-S + P (blocked victim)", "P", "ct_strong", true},
      {"CT-S + Scribe", "Scribe", "ct_strong", false},
      {"CT-S + S(cheat) (blocked victim)", "S(cheat)", "ct_strong", true},
      {"CT-<>S + <>S", "<>S", "ct_rotating", false},
      {"CT-<>S + <>S (blocked victim)", "<>S", "ct_rotating", true},
      {"chain(P<) + P<", "P<", "cr_chain", false},
  };

  Table table({"scenario", "decisions", "total", "non-total",
               "consulted (mean)", "consulted (min)"});
  for (const auto& s : scenarios) {
    red::TotalityReport merged;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto r = run_scenario(s, seed);
      merged.decisions += r.decisions;
      merged.total_decisions += r.total_decisions;
      merged.non_total_decisions += r.non_total_decisions;
      merged.consulted_fraction.merge(r.consulted_fraction);
      if (merged.example.empty()) merged.example = r.example;
    }
    table.add_row({s.label, Table::num(merged.decisions),
                   Table::num(merged.total_decisions),
                   Table::num(merged.non_total_decisions),
                   Table::pct(merged.consulted_fraction.mean()),
                   Table::pct(merged.consulted_fraction.min())});
  }
  table.print("E2: causal-chain audit of decisions");

  std::printf(
      "\nReading: realistic-detector consensus decisions always consult every"
      "\nlive process (Lemma 4.1); the cheating detector, the majority quorum"
      "\nand the P< chain all decide while ignoring live processes.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
