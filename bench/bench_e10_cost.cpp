// Experiment E10: the cost of perfection.
//
// The S-based (total) algorithm consults everyone and pays n-1 asynchronous
// rounds; the <>S rotating coordinator consults a majority and finishes in
// a round or two once stable; the P< chain is nearly free but non-uniform.
// This bench quantifies the trade across n and f: messages, steps to the
// first/last decision - the operational face of "totality" (Lemma 4.1).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

struct CostRow {
  Tick first_decision = -1;
  Tick last_decision = -1;
  std::int64_t messages = 0;
  std::int64_t events = 0;
};

template <typename Algo>
CostRow measure(const std::string& detector, ProcessId n, ProcessId crashes,
                std::uint64_t seed) {
  CostRow row;
  const auto pattern = crashes == 0
                           ? model::all_correct(n)
                           : model::cascade(n, crashes, 100, 80);
  const auto trace =
      bench::run_fleet<Algo>(detector, pattern, seed, 30'000);
  row.first_decision = bench::first_decision_tick(trace, 0);
  row.last_decision = bench::last_decision_tick(trace, 0);
  row.messages = trace.num_messages();
  row.events = trace.num_events();
  return row;
}

template <typename Algo>
void add_rows(Table& table, const std::string& algo_label,
              const std::string& detector) {
  for (const ProcessId n : {4, 6, 8}) {
    for (const ProcessId crashes : {0, 1, static_cast<int>(n) / 2 - 1}) {
      CostRow sum;
      Summary first, last, msgs;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto row = measure<Algo>(detector, n, crashes, seed);
        if (row.first_decision >= 0) {
          first.add(static_cast<double>(row.first_decision));
        }
        if (row.last_decision >= 0) {
          last.add(static_cast<double>(row.last_decision));
        }
        msgs.add(static_cast<double>(row.messages));
      }
      table.add_row({algo_label + " + " + detector, Table::num(n),
                     Table::num(crashes),
                     first.count() > 0 ? Table::fixed(first.mean(), 0) : "-",
                     last.count() > 0 ? Table::fixed(last.mean(), 0) : "-",
                     Table::fixed(msgs.mean(), 0)});
    }
  }
}

void BM_CtStrongDecision(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  const auto pattern = model::all_correct(n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto trace =
        bench::run_fleet<algo::CtStrongConsensus>("P", pattern, seed++, 30'000);
    benchmark::DoNotOptimize(bench::last_decision_tick(trace, 0));
  }
}
BENCHMARK(BM_CtStrongDecision)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CtRotatingDecision(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  const auto pattern = model::all_correct(n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto trace = bench::run_fleet<algo::CtRotatingConsensus>(
        "<>S", pattern, seed++, 30'000);
    benchmark::DoNotOptimize(bench::last_decision_tick(trace, 0));
  }
}
BENCHMARK(BM_CtRotatingDecision)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E10: the cost of perfection - decision latency (ticks) and"
              "\nmessage counts, 5 seeds per row (cascade crashes from tick"
              "\n100 when f > 0)\n");

  Table table({"algorithm", "n", "f", "first decision", "last decision",
               "messages"});
  add_rows<algo::CtStrongConsensus>(table, "CT-S", "P");
  add_rows<algo::CtRotatingConsensus>(table, "CT-<>S", "<>S");
  add_rows<algo::CrChainConsensus>(table, "chain", "P<");
  table.print("E10: total vs majority vs chain consensus");

  std::printf(
      "\nReading: the total (P-grade) algorithm pays quadratic messages and"
      "\nits n-1 rounds grow with n; the majority algorithm is cheaper but"
      "\nowes its speed to NOT consulting everyone (E2) and dies without a"
      "\nmajority (E1); the chain is almost free and almost meaningless"
      "\n(non-uniform, E6). Perfection is the expensive corner.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
