// Experiment E9: QoS of the realistic detector implementations
// (Chen-Toueg metrics: detection time T_D, mistake rate lambda_M, mistake
// duration T_M, query accuracy P_A).
//
// Two sweeps: (a) the speed/accuracy frontier of the fixed timeout, and
// (b) fixed vs adaptive vs phi-accrual across network regimes. These are
// the "realistic failure detectors" whose inherent imperfection is the
// reason the paper's collapse result matters in practice.
// RFD_E9_TRACE=<path> streams one JSONL trace across all sweeps:
// "arrival" records (heartbeat inter-arrival gaps, the distribution the
// adaptive detectors model) and "verdict" records (polled suspicion
// flips), each tagged with a sweep-unique run id.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench_util.hpp"
#include "obs/trace_writer.hpp"

namespace rfd {
namespace {

rt::QosConfig base_config() {
  rt::QosConfig config;
  config.heartbeat_interval_ms = 100.0;
  config.duration_ms = 60'000.0;
  config.crash_at_ms = 45'000.0;
  return config;
}

std::vector<std::string> qos_row(const std::string& label,
                                 const rt::QosAggregate& agg, int runs) {
  return {label,
          Table::fixed(agg.detection_time_ms.mean(), 1),
          Table::fixed(agg.mistake_rate_per_s.mean() * 60.0, 3),
          Table::fixed(agg.avg_mistake_duration_ms.mean(), 1),
          Table::pct(agg.query_accuracy.mean(), 3),
          std::to_string(runs - agg.undetected_crashes) + "/" +
              std::to_string(runs)};
}

void BM_QosExperiment(benchmark::State& state) {
  const auto config = base_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::run_qos_experiment(config, 3));
  }
}
BENCHMARK(BM_QosExperiment)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  const int kRuns = 12;
  bench::JsonReport json("e9_qos");

  std::unique_ptr<obs::TraceWriter> trace;
  if (const char* path = std::getenv("RFD_E9_TRACE")) {
    obs::Config obs_config;
    obs_config.trace_path = path;
    trace = std::make_unique<obs::TraceWriter>(obs_config);
    if (!trace->ok()) trace.reset();
  }
  std::int64_t next_run_id = 0;
  std::printf("E9: QoS of timeout-based detectors (heartbeat 100ms, crash at"
              "\n45s of 60s, %d seeded runs per row; mistakes per minute)\n",
              kRuns);

  {
    Table table({"fixed timeout (ms)", "T_D mean (ms)", "mistakes/min",
                 "T_M mean (ms)", "P_A", "detected"});
    for (const double timeout : {120.0, 200.0, 400.0, 800.0, 1600.0}) {
      auto config = base_config();
      config.detector.kind = rt::DetectorKind::kFixed;
      config.detector.fixed.timeout_ms = timeout;
      config.network.jitter_sigma = 1.1;
      config.network.loss_prob = 0.05;
      config.trace = trace.get();
      config.trace_run_id = next_run_id;
      next_run_id += kRuns;
      const auto agg = rt::run_qos_sweep(config, 0x901, kRuns);
      json.row("frontier")
          .num("timeout_ms", timeout)
          .num("detection_ms_mean", agg.detection_time_ms.mean())
          .num("mistakes_per_min", agg.mistake_rate_per_s.mean() * 60.0)
          .num("mistake_duration_ms_mean", agg.avg_mistake_duration_ms.mean())
          .num("query_accuracy", agg.query_accuracy.mean())
          .num("undetected", static_cast<double>(agg.undetected_crashes));
      auto row = qos_row(Table::fixed(timeout, 0), agg, kRuns);
      table.add_row(std::move(row));
    }
    table.print("E9a: the timeout frontier (lossy, jittery network)");
  }

  {
    Table table({"detector", "network", "T_D mean (ms)", "mistakes/min",
                 "T_M mean (ms)", "P_A", "detected"});
    struct Net {
      std::string label;
      double sigma;
      double loss;
    };
    const std::vector<Net> nets = {{"calm", 0.4, 0.0},
                                   {"jittery", 1.1, 0.05},
                                   {"hostile", 1.5, 0.15}};
    for (const auto& net : nets) {
      for (const auto kind : {rt::DetectorKind::kFixed, rt::DetectorKind::kChen,
                              rt::DetectorKind::kPhi}) {
        auto config = base_config();
        config.detector.kind = kind;
        config.detector.fixed.timeout_ms = 300.0;
        config.detector.chen.alpha_ms = 200.0;
        config.detector.phi.threshold = 8.0;
        config.network.jitter_sigma = net.sigma;
        config.network.loss_prob = net.loss;
        config.trace = trace.get();
        config.trace_run_id = next_run_id;
        next_run_id += kRuns;
        const auto agg = rt::run_qos_sweep(config, 0x902, kRuns);
        json.row("detectors")
            .str("detector", rt::detector_kind_name(kind))
            .str("network", net.label)
            .num("detection_ms_mean", agg.detection_time_ms.mean())
            .num("mistakes_per_min", agg.mistake_rate_per_s.mean() * 60.0)
            .num("query_accuracy", agg.query_accuracy.mean())
            .num("undetected", static_cast<double>(agg.undetected_crashes));
        auto row = qos_row(rt::detector_kind_name(kind), agg, kRuns);
        row.insert(row.begin() + 1, net.label);
        table.add_row(std::move(row));
      }
    }
    table.print("E9b: fixed vs adaptive vs phi-accrual across regimes");
  }
  if (trace != nullptr) {
    trace->close();
    std::printf("trace: %lld records written\n",
                static_cast<long long>(trace->written_records()));
  }
  json.write();

  std::printf(
      "\nReading: shorter timeouts trade mistakes for detection speed; the"
      "\nadaptive and accrual detectors hold accuracy as the network degrades"
      "\nwhere the fixed timeout starts flapping. None of them is ever"
      "\nPerfect - which is why systems bolt a membership service on top"
      "\n(E8) and why the paper's P-emulation story is the right lens.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
