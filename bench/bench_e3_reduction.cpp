// Experiment E3: Lemma 4.2 - the QoS of the emulated Perfect detector.
//
// Runs T(D->P) over the S-based consensus with a P-grade base detector and
// measures, per crash: how many ticks and how many consensus instances the
// emulation needs before output(P) shows the crash, and (crucially) that
// false suspicions never occur. The instance pacing is swept to show the
// emulation's detection latency is dominated by the instance rate - the
// "cost of perfection" in reduction form.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

struct EmulationStats {
  Summary detection_ticks;     // crash -> suspicion at each correct process
  std::int64_t false_suspicions = 0;
  std::int64_t crashes_detected = 0;
  std::int64_t crashes_missed = 0;
  Summary instances_decided;
};

EmulationStats measure(Tick gap, InstanceId instances, std::uint64_t seed) {
  const ProcessId n = 4;
  EmulationStats stats;
  model::PatternSweep sweep(n, mix_seed(seed, 0xe3));
  sweep.with_single_crashes({500, 2000}).with_cascades(2, 800, 900);
  for (const auto& pattern : sweep.patterns()) {
    const auto oracle = fd::find_detector("P").factory(pattern, seed);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(std::make_unique<red::ConsensusToP>(
          n, red::ConsensusToP::ct_strong_factory(n), instances, gap));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(seed + 7));
    sim.run_for(12'000);

    for (ProcessId p = 0; p < n; ++p) {
      if (!pattern.correct().contains(p)) continue;
      const auto& reduction =
          dynamic_cast<red::ConsensusToP&>(sim.automaton(p));
      stats.instances_decided.add(
          static_cast<double>(reduction.instances_decided()));
      // Timeline audit against ground truth.
      ProcessSet seen(n);
      for (const auto& [tick, victim] : reduction.suspicion_timeline()) {
        seen.insert(victim);
        const Tick crash = pattern.crash_tick(victim);
        if (crash == kNever || tick < crash) {
          ++stats.false_suspicions;
        } else {
          stats.detection_ticks.add(static_cast<double>(tick - crash));
        }
      }
      pattern.faulty().for_each([&](ProcessId dead) {
        if (seen.contains(dead)) {
          ++stats.crashes_detected;
        } else {
          ++stats.crashes_missed;
        }
      });
    }
  }
  return stats;
}

void BM_ReductionRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(200, 20, 3).crashes_detected);
  }
}
BENCHMARK(BM_ReductionRun)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E3: QoS of output(P) emulated by T(D->P) over CT-S consensus"
              "\n(n=4, base detector P, horizon 12000 ticks)\n");

  Table table({"instance gap", "instances", "crashes detected", "missed",
               "false susp.", "detect p50 (ticks)", "detect p99 (ticks)"});
  for (const Tick gap : {0, 100, 300, 600}) {
    const InstanceId instances = gap == 0 ? 40 : static_cast<InstanceId>(
        10'000 / gap + 2);
    const auto stats = measure(gap, instances, 11);
    table.add_row({Table::num(gap), Table::num(instances),
                   Table::num(stats.crashes_detected),
                   Table::num(stats.crashes_missed),
                   Table::num(stats.false_suspicions),
                   Table::fixed(stats.detection_ticks.percentile(0.5), 1),
                   Table::fixed(stats.detection_ticks.percentile(0.99), 1)});
  }
  table.print("E3: emulated-P detection quality vs instance pacing");

  std::printf(
      "\nReading: zero false suspicions in every configuration (strong"
      "\naccuracy, Lemma 4.2); detection latency scales with the instance"
      "\npacing since a crash is only observable at the next decision.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
