// Experiment E5: Section 6.1 - the Marabout, and why realism matters.
//
// Three tables: (1) the realism audit of the whole detector zoo (the
// behavioural check of Section 3.1, including the paper's own
// counterexample pair); (2) the Marabout solving consensus under the most
// hostile unbounded-crash patterns (all but one process dead); (3) the
// same leader algorithm handed a realistic detector, falling apart.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

void BM_RealismSuite(benchmark::State& state) {
  const auto seeds = std::vector<std::uint64_t>{1, 2, 3, 4};
  for (auto _ : state) {
    const auto report =
        fd::check_realism_suite(fd::find_detector("P").factory, 5, seeds);
    benchmark::DoNotOptimize(report.realistic);
  }
}
BENCHMARK(BM_RealismSuite)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E5: the Marabout and the realism boundary (Section 6.1 / 3.2)\n");

  // Table 1: realism audit.
  {
    const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
    Table table({"detector", "by construction", "behavioural check",
                 "counterexample"});
    for (const auto& spec : fd::standard_detectors()) {
      const auto report = fd::check_realism_suite(spec.factory, 5, seeds);
      table.add_row({spec.name, spec.realistic ? "realistic" : "clairvoyant",
                     report.realistic ? "passes" : "FAILS",
                     report.counterexample.empty()
                         ? "-"
                         : report.counterexample.substr(0, 48) + "..."});
    }
    table.print("E5a: realism audit of the detector zoo (Section 3.1 check)");
  }

  // Table 2: Marabout consensus under all-but-one crashes.
  {
    Table table({"survivor", "verdict", "decision", "messages"});
    const ProcessId n = 5;
    for (ProcessId survivor = 0; survivor < n; ++survivor) {
      const auto pattern = model::all_but_one_crash(n, survivor, 300);
      const auto trace = bench::run_fleet<algo::MaraboutConsensus>(
          "Marabout", pattern, 21 + survivor, 8000);
      std::vector<Value> proposals;
      for (ProcessId p = 0; p < n; ++p) proposals.push_back(100 + p);
      const auto check = algo::check_consensus(trace, 0, proposals);
      const auto d = trace.decision_of(survivor, 0);
      table.add_row({"p" + std::to_string(survivor),
                     check.ok_uniform() ? "solved" : check.to_string(),
                     d ? std::to_string(d->value) : "-",
                     Table::num(trace.num_messages())});
    }
    table.print("E5b: leader(M) consensus, all but one process crash (n=5)");
  }

  // Table 3: the same algorithm with realistic detectors.
  {
    Table table({"detector", "pattern", "verdict"});
    const ProcessId n = 5;
    std::vector<Value> proposals;
    for (ProcessId p = 0; p < n; ++p) proposals.push_back(100 + p);
    for (const std::string detector : {"P", "<>P"}) {
      for (const Tick crash : {0, 3, 10}) {
        const auto pattern = model::single_crash(n, 0, crash);
        const auto trace = bench::run_fleet<algo::MaraboutConsensus>(
            detector, pattern, 31 + crash, 8000);
        const auto check = algo::check_consensus(trace, 0, proposals);
        table.add_row({detector, pattern.to_string(),
                       check.ok_uniform() ? "solved" : check.to_string()});
      }
    }
    table.print("E5c: leader(M) under realistic detectors (leader p0 crashes)");
  }

  std::printf(
      "\nReading: the Marabout fails the Section 3.1 realism check (as does"
      "\nthe cheating Strong detector) yet solves consensus when n-1"
      "\nprocesses crash; handing its algorithm a realistic detector destroys"
      "\ntermination - the lower bounds of the paper live exactly on this"
      "\nboundary.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
