// Experiment E13: sharded-core scaling - what the deterministic
// multi-threaded simulation core buys at cluster scale.
//
// The E12 gossip workload (heartbeat fabric + fixed-timeout detectors +
// a mid-run crash wave) runs at n in {1024, 4096, 10240} for shards in
// {1, 2, 4, 8}; each cell reports events/sec, wall ms and msgs/node/s,
// plus the speedup over the shards=1 run of the same n. Because the
// sharded engine is bit-for-bit shard-count-invariant (see
// cluster/engine.cpp), every row of one n is the *same simulation* - the
// bench asserts the invariance on its own results, so a determinism
// regression fails the bench before it can mislead the scaling numbers.
//
// E13b isolates the synchronization cost itself: n=4096 at shards=4,
// crossing barrier_spin in {0 (park immediately: the condvar-style cost
// floor), -1 (hardware-aware spin)} with lookahead_windows in {1, 8}.
// Each cell reports events/sec plus the always-sampled kSync rollup
// (barrier meets and per-shard wait time), and is asserted
// result-identical to the first cell - the knobs are scheduling only.
//
// RFD_E13_SMOKE=1 restricts to n=4096, shards in {1, 2, 4} for CI, which
// gates shards=2 at >= 1.15x and shards=4 at >= 1.5x the shards=1 run
// (4-vCPU runners). Rows land in BENCH_e13_shard.json, with an `env`
// block recording the host's CPU budget so the speedups can be read in
// context.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "bench_util.hpp"
#include "cluster/engine.hpp"
#include "common/assert.hpp"
#include "common/table.hpp"

namespace rfd {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterReport;
using cluster::TopologyKind;

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// The E12a gossip scaling cell (identical tuning, so E12/E13 numbers are
// directly comparable): detector timeout tracking the dissemination
// cadence, a crash wave at 40% of the horizon.
ClusterConfig gossip_config(int n) {
  constexpr double kIntervalMs = 250.0;
  ClusterConfig config;
  config.n = n;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = std::max(32, n / 8);
  config.heartbeat_interval_ms = kIntervalMs;
  config.check_interval_ms = 50.0;
  config.detector.kind = rt::DetectorKind::kFixed;
  const double per_round =
      static_cast<double>(config.topology.gossip_fanout) *
      config.topology.digest_size;
  const double gap_ms = kIntervalMs * std::max(1.0, n / per_round);
  config.detector.fixed.timeout_ms = std::max(1'000.0, 12.0 * gap_ms);
  config.bootstrap_grace_ms =
      std::max(1500.0, config.detector.fixed.timeout_ms);
  config.duration_ms = 12'000.0;
  const int crashes = std::max(1, n / 64);
  config.scenario =
      cluster::multi_crash_scenario(n, crashes, config.duration_ms * 0.4);
  return config;
}

/// The fields the shard-count invariance is asserted on (cheap proxies
/// for the full report; the dedicated test covers traces byte-for-byte).
struct Invariant {
  std::int64_t events = 0;
  std::int64_t messages = 0;
  std::int64_t false_suspicions = 0;
  std::int64_t detections = 0;

  bool operator==(const Invariant&) const = default;
};

Invariant invariant_of(const ClusterReport& r) {
  return Invariant{r.events_executed, r.messages_sent, r.false_suspicions,
                   r.detection_latency_ms.count()};
}

/// Sum of the always-sampled kSync rollups across shards: total barrier
/// meets entered and wall-clock spent waiting at them (idle time, not
/// simulation work).
void sync_rollup(const ClusterReport& r, std::int64_t* calls,
                 double* est_ms) {
  *calls = 0;
  *est_ms = 0.0;
  for (const auto& stat : r.profile) {
    if (stat.phase != "sync") continue;
    *calls += stat.calls;
    *est_ms += stat.est_ms;
  }
}

/// CPUs this process may actually run on (the speedup ceiling); falls
/// back to hardware_concurrency where there is no affinity API.
int usable_cpus() {
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    return CPU_COUNT(&set);
  }
#endif
  return static_cast<int>(std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  const bool smoke = std::getenv("RFD_E13_SMOKE") != nullptr;
  bench::JsonReport json("e13_shard");
  json.env_num("hardware_concurrency",
               static_cast<double>(std::thread::hardware_concurrency()));
  json.env_num("usable_cpus", static_cast<double>(usable_cpus()));
  json.env_str("pinning",
#ifdef __linux__
               "sched_getaffinity"
#else
               "none"
#endif
  );

  const std::vector<int> sizes =
      smoke ? std::vector<int>{4096} : std::vector<int>{1024, 4096, 10240};
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

  std::printf("E13: sharded-core scaling (gossip fabric, %s)\n",
              smoke ? "smoke: n=4096, shards in {1, 2, 4}"
                    : "n in {1024, 4096, 10240}, shards in {1, 2, 4, 8}");
  std::printf("host: %u hw threads, %d usable cpus\n\n",
              std::thread::hardware_concurrency(), usable_cpus());

  Table table({"n", "shards", "sim events", "wall ms", "events/s",
               "msgs/node/s", "speedup"});
  for (const int n : sizes) {
    ClusterConfig config = gossip_config(n);
    if (n >= 10'240) config.duration_ms = 6'000.0;
    double base_rate = 0.0;
    Invariant baseline;
    for (const int shards : shard_counts) {
      config.shards = shards;
      ClusterReport r;
      const double ms =
          wall_ms([&] { r = cluster::run_cluster(config, 0xe13); });
      const double events_per_s =
          ms > 0.0 ? static_cast<double>(r.events_executed) / (ms / 1000.0)
                   : 0.0;
      const Invariant inv = invariant_of(r);
      if (shards == shard_counts.front()) {
        base_rate = events_per_s;
        baseline = inv;
      } else {
        // Same simulation or the scaling numbers are meaningless.
        RFD_REQUIRE_MSG(inv == baseline,
                        "sharded run diverged from shards=1 results");
      }
      const double speedup = base_rate > 0.0 ? events_per_s / base_rate : 0.0;
      table.add_row({Table::num(n), Table::num(shards),
                     Table::num(r.events_executed), Table::fixed(ms, 1),
                     Table::fixed(events_per_s, 0),
                     Table::fixed(r.messages_per_node_per_s, 1),
                     Table::fixed(speedup, 2) + "x"});
      json.row("shard_scaling")
          .str("topology", "gossip")
          .num("n", n)
          .num("shards", shards)
          .num("sim_duration_ms", config.duration_ms)
          .num("events_executed", static_cast<double>(r.events_executed))
          .num("wall_ms", ms)
          .num("events_per_s", events_per_s)
          .num("msgs_per_node_per_s", r.messages_per_node_per_s)
          .num("payload_bytes_per_node_per_s",
               r.payload_bytes_per_node_per_s)
          .num("peak_event_queue", static_cast<double>(r.peak_event_queue))
          .num("speedup_vs_one_shard", speedup);
    }
  }
  table.print("E13: events/sec by shard count (gossip, crash wave)");
  std::printf(
      "\nspeedup is vs the shards=1 run of the same n (same binary, same\n"
      "barrier protocol), so it isolates the parallelism win; results are\n"
      "asserted identical across shard counts before any rate is "
      "reported.\n\n");

  // E13b: barrier cost in isolation. Same workload, shards=4, crossing
  // the two scheduling knobs; the kSync rollup is the per-shard time
  // spent waiting at barriers and for the trace merger, summed over
  // shards (so it can exceed wall-clock).
  {
    constexpr int kShards = 4;
    ClusterConfig config = gossip_config(4096);
    config.shards = kShards;
    config.obs.profile = true;
    struct Cell {
      int spin;
      int lookahead;
    };
    const std::vector<Cell> cells = {{0, 1}, {0, 8}, {-1, 1}, {-1, 8}};
    std::printf("E13b: barrier cost (n=4096, shards=%d)\n\n", kShards);
    Table table_b({"barrier_spin", "lookahead", "wall ms", "events/s",
                   "sync meets", "sync wait ms"});
    bool have_baseline = false;
    Invariant baseline;
    for (const Cell& cell : cells) {
      config.barrier_spin = cell.spin;
      config.lookahead_windows = cell.lookahead;
      ClusterReport r;
      const double ms =
          wall_ms([&] { r = cluster::run_cluster(config, 0xe13); });
      const double events_per_s =
          ms > 0.0 ? static_cast<double>(r.events_executed) / (ms / 1000.0)
                   : 0.0;
      const Invariant inv = invariant_of(r);
      if (!have_baseline) {
        baseline = inv;
        have_baseline = true;
      } else {
        RFD_REQUIRE_MSG(inv == baseline,
                        "barrier/lookahead knobs changed results");
      }
      std::int64_t sync_meets = 0;
      double sync_ms = 0.0;
      sync_rollup(r, &sync_meets, &sync_ms);
      table_b.add_row({cell.spin == 0 ? "0 (park)" : "-1 (default)",
                       Table::num(cell.lookahead), Table::fixed(ms, 1),
                       Table::fixed(events_per_s, 0), Table::num(sync_meets),
                       Table::fixed(sync_ms, 1)});
      json.row("barrier_cost")
          .str("topology", "gossip")
          .num("n", config.n)
          .num("shards", kShards)
          .num("barrier_spin", cell.spin)
          .num("lookahead_windows", cell.lookahead)
          .num("wall_ms", ms)
          .num("events_per_s", events_per_s)
          .num("sync_calls", static_cast<double>(sync_meets))
          .num("sync_est_ms", sync_ms);
    }
    table_b.print("E13b: spin vs park, lookahead off vs on");
    std::printf(
        "\nevery cell is the identical simulation (asserted); the knobs\n"
        "only move synchronization cost. sync wait is summed across "
        "shards.\n\n");
  }

  json.write();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
