// Experiment E8: group membership emulating P by exclusion (Section 1.3).
//
// Sweeps the detector timeout against a network with an unstable pre-GST
// period and reports what the abstraction costs: false exclusions of live
// nodes (sacrificed to keep the suspicion list accurate), exclusion
// latency for real crashes, and whether the emulation claim ("every
// suspicion turns out to be accurate") held at the end of each run.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

rt::MembershipConfig base_config() {
  rt::MembershipConfig config;
  config.n = 6;
  config.duration_ms = 40'000.0;
  config.network.jitter_sigma = 0.9;
  config.network.gst_ms = 15'000.0;
  config.network.pre_gst_extra_ms = 350.0;
  config.network.pre_gst_chaos_prob = 0.4;
  config.crash_at_ms = std::vector<double>(6, -1.0);
  config.crash_at_ms[4] = 25'000.0;  // one real crash, after stabilization
  return config;
}

void BM_MembershipRun(benchmark::State& state) {
  const auto config = base_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::run_membership_experiment(config, 1));
  }
}
BENCHMARK(BM_MembershipRun)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E8: group membership emulating P (n=6, unstable period until"
              "\nGST=15s, p4 crashes at 25s; 8 seeds per row)\n");

  Table table({"detector", "timeout/alpha (ms)", "false exclusions",
               "real-crash latency p50 (ms)", "converged",
               "suspicions accurate"});
  struct RowSpec {
    rt::DetectorKind kind;
    double param;
  };
  const std::vector<RowSpec> rows = {
      {rt::DetectorKind::kFixed, 150.0}, {rt::DetectorKind::kFixed, 400.0},
      {rt::DetectorKind::kFixed, 900.0}, {rt::DetectorKind::kChen, 100.0},
      {rt::DetectorKind::kChen, 300.0},  {rt::DetectorKind::kPhi, 5.0},
      {rt::DetectorKind::kPhi, 10.0},
  };
  for (const auto& row : rows) {
    auto config = base_config();
    config.detector.kind = row.kind;
    if (row.kind == rt::DetectorKind::kFixed) {
      config.detector.fixed.timeout_ms = row.param;
    } else if (row.kind == rt::DetectorKind::kChen) {
      config.detector.chen.alpha_ms = row.param;
    } else {
      config.detector.phi.threshold = row.param;
    }
    std::int64_t false_exclusions = 0;
    Summary latency;
    int converged = 0;
    int accurate = 0;
    const int runs = 8;
    for (std::uint64_t seed = 0; seed < runs; ++seed) {
      const auto r = rt::run_membership_experiment(config, seed);
      false_exclusions += r.false_exclusions;
      latency.merge(r.exclusion_latency_ms);
      converged += r.converged ? 1 : 0;
      accurate += r.suspicions_accurate ? 1 : 0;
    }
    table.add_row(
        {rt::detector_kind_name(row.kind), Table::fixed(row.param, 0),
         Table::num(false_exclusions),
         latency.count() > 0 ? Table::fixed(latency.percentile(0.5), 0) : "-",
         std::to_string(converged) + "/" + std::to_string(runs),
         std::to_string(accurate) + "/" + std::to_string(runs)});
  }
  table.print("E8: the price of a Perfect interface");

  std::printf(
      "\nReading: hair-trigger timeouts buy fast detection at the cost of"
      "\nsacrificing live nodes during the unstable period; generous or"
      "\nadaptive detectors exclude (almost) only the real crash. In every"
      "\nrun the installed abstraction stays accurate - excluded nodes are"
      "\ndead or halt on learning it - which is precisely how real systems"
      "\n\"implement\" P from <>P-grade timeouts.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
