// Quickstart: simulate uniform consensus over a Perfect failure detector.
//
//   ./quickstart [--n=5] [--crash=2] [--crash-at=40] [--seed=7]
//
// Builds a failure pattern, samples a P-grade detector history for it,
// runs the Chandra-Toueg S-based consensus (which P implements) under a
// random-but-fair adversary, and prints what happened: decisions, spec
// verdicts, and the causal-totality audit from Lemma 4.1.
#include <cstdio>

#include "core/api.hpp"

using namespace rfd;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<ProcessId>(cli.get_int("n", 5));
  const auto crash_count = static_cast<ProcessId>(cli.get_int("crash", 2));
  const Tick crash_at = cli.get_int("crash-at", 40);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // 1. The environment: who crashes and when.
  model::FailurePattern pattern = model::cascade(n, crash_count, crash_at, 25);
  std::printf("pattern : %s\n", pattern.to_string().c_str());

  // 2. One sampled history of a Perfect failure detector for this pattern.
  const auto oracle = fd::find_detector("P").factory(pattern, seed);

  // 3. One consensus automaton per process, each proposing 100 + id.
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  std::vector<Value> proposals;
  for (ProcessId p = 0; p < n; ++p) {
    proposals.push_back(100 + p);
    automata.push_back(std::make_unique<algo::CtStrongConsensus>(n, 100 + p));
  }

  // 4. Run under a seeded adversary; fairness and reliable delivery are
  //    enforced by the simulator per the model's run conditions.
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(seed + 1));
  sim.run_for(8000);
  const sim::Trace& trace = sim.trace();

  std::printf("trace   : %s\n", trace.summary().c_str());
  for (const auto& d : trace.decisions()) {
    std::printf("decision: p%d decided %lld at t=%lld\n", d.process,
                static_cast<long long>(d.value),
                static_cast<long long>(d.time));
  }

  // 5. Judge the run against the uniform consensus specification.
  const auto check = algo::check_consensus(trace, 0, proposals);
  std::printf("spec    : %s\n", check.to_string().c_str());

  // 6. Lemma 4.1 in action: every decision consulted every live process.
  const auto totality = red::check_totality(trace, 0);
  std::printf("totality: %lld/%lld decisions total (consulted mean %.0f%%)\n",
              static_cast<long long>(totality.total_decisions),
              static_cast<long long>(totality.decisions),
              totality.consulted_fraction.mean() * 100.0);

  // 7. And the whole trace is a valid run of the formal model.
  const auto valid = trace.validate(*oracle);
  std::printf("run     : %s\n", valid.ok ? "valid (conditions 1-5 hold)"
                                         : valid.detail.c_str());
  return check.ok_uniform() && totality.all_total() && valid.ok ? 0 : 1;
}
