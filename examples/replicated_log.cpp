// A replicated bank ledger over atomic broadcast (the application class
// the paper's Section 1.1 motivates: "building highly available and
// consistent replicated services").
//
//   ./replicated_log [--n=4] [--crash=1] [--seed=5]
//
// Each replica atomically broadcasts a few deposit/withdraw operations;
// the consensus-ordered delivery sequence is applied to a local balance.
// Every replica - including ones that later crash - applies the same
// prefix of the same sequence, so balances never diverge.
#include <cstdio>
#include <map>

#include "core/api.hpp"

using namespace rfd;

namespace {

// Operations are encoded as values: op = amount * 16 + replica, decoded
// with a floor division so negative withdrawals survive the round-trip.
Value encode_op(ProcessId replica, std::int64_t amount) {
  return amount * 16 + replica;
}

std::int64_t op_amount(Value op) {
  const std::int64_t replica = ((op % 16) + 16) % 16;
  return (op - replica) / 16;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<ProcessId>(cli.get_int("n", 4));
  const auto crashes = static_cast<ProcessId>(cli.get_int("crash", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  const auto pattern = crashes > 0 ? model::cascade(n, crashes, 900, 400)
                                   : model::all_correct(n);
  std::printf("replicas: %d, pattern %s\n", n, pattern.to_string().c_str());

  // Each replica submits two operations at staggered local steps.
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  std::vector<Value> all_ops;
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<algo::ScriptedBroadcast> script{
        {p * 3, encode_op(p, 100 + p)},     // deposit
        {p * 3 + 20, encode_op(p, -(20 + p))},  // withdrawal
    };
    for (const auto& s : script) all_ops.push_back(s.value);
    automata.push_back(std::make_unique<algo::AtomicBroadcast>(n, script));
  }

  const auto oracle = fd::find_detector("P").factory(pattern, seed);
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(seed + 1));
  sim.run_for(40'000);
  const sim::Trace& trace = sim.trace();

  // Apply each replica's delivery sequence to a balance.
  std::map<ProcessId, std::int64_t> balance;
  std::map<ProcessId, std::string> ledger;
  for (const auto& d : trace.deliveries_of_instance(0)) {
    balance[d.process] += op_amount(d.value);
    ledger[d.process] += std::to_string(op_amount(d.value)) + " ";
  }
  for (ProcessId p = 0; p < n; ++p) {
    const bool correct = pattern.correct().contains(p);
    std::printf("  replica p%d%s: balance %lld  [%s]\n", p,
                correct ? "" : " (crashed)",
                static_cast<long long>(balance[p]), ledger[p].c_str());
  }

  std::vector<Value> by_correct;
  for (ProcessId p = 0; p < n; ++p) {
    if (pattern.correct().contains(p)) {
      by_correct.push_back(encode_op(p, 100 + p));
      by_correct.push_back(encode_op(p, -(20 + p)));
    }
  }
  const auto check = algo::check_abcast(trace, 0, by_correct, all_ops);
  std::printf("abcast  : %s\n",
              check.ok() ? "validity, agreement, uniform total order, "
                           "integrity all hold"
                         : check.to_string().c_str());

  // All correct replicas must agree on the final balance.
  std::int64_t reference = 0;
  bool first = true, agree = true;
  pattern.correct().for_each([&](ProcessId p) {
    if (first) {
      reference = balance[p];
      first = false;
    } else if (balance[p] != reference) {
      agree = false;
    }
  });
  std::printf("ledger  : correct replicas %s\n",
              agree ? "agree on the final balance" : "DIVERGED");
  return check.ok() && agree ? 0 : 1;
}
