// Soak runner: the cluster protocol on a real or simulated transport,
// with checkpointed crash-resume and graceful signal shutdown.
//
//   ./soak [seed]
//          [--backend sim|udp]        transport (default sim)
//          [--scenario <file.scn>]    fault timeline (scenario DSL)
//          [--n <count>]              initial nodes (default 16)
//          [--duration <ms>]          simulated horizon (default 30000)
//          [--tick <ms>]              heartbeat/check grid (default 100)
//          [--detector fixed|chen|phi] (default fixed)
//          [--timeout <ms>]           fixed detector timeout (default 1000)
//          [--flaky]                  socket-boundary fault injection
//          [--flaky-loss <p>]         injection loss probability
//          [--flaky-dup <p>]          injection duplication probability
//          [--loss <p>]               sim backend network loss
//          [--checkpoint <path>]      checkpoint file (enables snapshots)
//          [--checkpoint-every <ms>]  cadence (default 5000 when enabled)
//          [--resume]                 resume from --checkpoint
//          [--time-scale <x>]         udp wall ms per sim ms (default 1.0)
//          [--base-port <port>]       udp port range base (default 39000)
//          [--trace <path|->]         JSONL trace
//          [--trace-every <ticks>]    metrics snapshot cadence
//
// The same .scn files the simulator runs drive this binary on both
// backends; on udp, network-shaped faults require --flaky (the
// injection layer is where partitions/storms/loss live - real sockets
// have no verdict network). SIGINT/SIGTERM stop the run at the next
// tick, flush the trace and write a final checkpoint; a second signal
// kills the process the default way.
//
// The last stdout line is machine-readable: "SOAK {json}".
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/scenario_dsl.hpp"
#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"
#include "transport/soak.hpp"

int main(int argc, char** argv) {
  using namespace rfd;
  const Cli cli(argc, argv);
  const std::uint64_t seed =
      !cli.positional().empty()
          ? std::strtoull(cli.positional()[0].c_str(), nullptr, 10)
          : 1;

  transport::SoakConfig config;
  config.seed = seed;
  config.n = static_cast<int>(cli.get_int("n", 16));
  config.duration_ms = cli.get_double("duration", 30'000.0);
  config.tick_ms = cli.get_double("tick", 100.0);
  config.topology.kind = cluster::TopologyKind::kGossip;
  config.topology.gossip_fanout = 3;

  const std::string backend = cli.get("backend", "sim");
  if (backend == "udp") {
    config.backend = transport::SoakBackend::kUdp;
  } else if (backend != "sim") {
    std::fprintf(stderr, "soak: unknown backend \"%s\" (sim|udp)\n",
                 backend.c_str());
    return 1;
  }

  const std::string detector = cli.get("detector", "fixed");
  if (detector == "fixed") {
    config.detector.kind = rt::DetectorKind::kFixed;
    config.detector.fixed.timeout_ms = cli.get_double("timeout", 1'000.0);
  } else if (detector == "chen") {
    config.detector.kind = rt::DetectorKind::kChen;
  } else if (detector == "phi") {
    config.detector.kind = rt::DetectorKind::kPhi;
  } else {
    std::fprintf(stderr, "soak: unknown detector \"%s\" (fixed|chen|phi)\n",
                 detector.c_str());
    return 1;
  }

  config.network.loss_prob = cli.get_double("loss", 0.0);
  config.flaky = cli.get_bool("flaky", false);
  config.flaky_params.network.loss_prob = cli.get_double("flaky-loss", 0.0);
  config.flaky_params.dup_prob = cli.get_double("flaky-dup", 0.0);
  config.udp.base_port =
      static_cast<std::uint16_t>(cli.get_int("base-port", 39000));
  config.time_scale = cli.get_double("time-scale", 1.0);

  config.checkpoint_path = cli.get("checkpoint", "");
  config.checkpoint_every_ms = cli.get_double(
      "checkpoint-every", config.checkpoint_path.empty() ? 0.0 : 5'000.0);
  config.resume = cli.get_bool("resume", false);

  config.obs.trace_path = cli.get("trace", "");
  config.obs.snapshot_every_ticks = static_cast<int>(
      cli.get_int("trace-every", config.obs.trace_path.empty() ? 0 : 50));

  const std::string scenario_path = cli.get("scenario", "");
  if (!scenario_path.empty()) {
    cluster::ScenarioDoc doc;
    cluster::DslError err;
    if (!cluster::load_scenario_file(scenario_path, cluster::DslContext{},
                                     doc, err)) {
      std::fprintf(stderr, "soak: %s: %s\n", scenario_path.c_str(),
                   err.to_string().c_str());
      return 1;
    }
    if (doc.n > 0) config.n = doc.n;
    if (doc.max_nodes > 0) config.max_nodes = doc.max_nodes;
    if (doc.duration_ms > 0.0 && cli.get("duration", "").empty()) {
      config.duration_ms = doc.duration_ms;
    }
    config.scenario = std::move(doc.scenario);
  }
  config.topology.digest_size = std::max(32, config.n);

  install_shutdown_handlers();

  transport::SoakReport report;
  std::string error;
  if (!transport::run_soak(config, report, error)) {
    std::fprintf(stderr, "soak: %s\n", error.c_str());
    return 1;
  }

  Table table({"metric", "value"});
  table.add_row({"backend", report.backend});
  table.add_row({"nodes", Table::num(report.n)});
  table.add_row({"sim time (s)", Table::fixed(report.sim_ms / 1000.0, 1)});
  table.add_row({"wall time (s)", Table::fixed(report.wall_ms / 1000.0, 1)});
  table.add_row({"datagrams sent", Table::num(report.transport.sent)});
  table.add_row({"delivered", Table::num(report.transport.delivered)});
  table.add_row({"dropped", Table::num(report.transport.dropped)});
  table.add_row({"duplicated", Table::num(report.transport.duplicated)});
  table.add_row({"send-queue drops", Table::num(report.transport.queue_drops)});
  table.add_row({"send retries", Table::num(report.transport.retries)});
  table.add_row({"socket errors", Table::num(report.transport.sock_errors)});
  table.add_row({"suspicions raised", Table::num(report.raises)});
  table.add_row({"suspicions cleared", Table::num(report.clears)});
  table.add_row({"false suspicions", Table::num(report.false_suspicions)});
  table.add_row({"missed detections", Table::num(report.missed)});
  table.add_row(
      {"detection p50 (ms)",
       report.detection.count() > 0
           ? Table::fixed(report.detection.percentile(0.5), 0)
           : "-"});
  table.add_row(
      {"detection p99 (ms)",
       report.detection.count() > 0
           ? Table::fixed(report.detection.percentile(0.99), 0)
           : "-"});
  table.add_row({"final agreement", Table::yes_no(report.final_agreement)});
  table.add_row({"checkpoints written", Table::num(report.checkpoints_written)});
  table.add_row({"resumed", Table::yes_no(report.resumed)});
  table.add_row({"stopped by signal", Table::yes_no(report.stopped_by_signal)});
  table.print("soak run");

  std::printf(
      "SOAK {\"backend\":\"%s\",\"n\":%d,\"sim_ms\":%.1f,"
      "\"ticks\":%lld,\"wall_ms\":%.1f,\"sent\":%lld,\"delivered\":%lld,"
      "\"dropped\":%lld,\"duplicated\":%lld,\"queue_drops\":%lld,"
      "\"retries\":%lld,\"sock_errors\":%lld,\"raises\":%lld,"
      "\"clears\":%lld,\"false\":%lld,\"missed\":%lld,"
      "\"detections\":%lld,\"detect_p50_ms\":%.1f,\"detect_p99_ms\":%.1f,"
      "\"agreement\":%s,\"checkpoints\":%d,\"resumed\":%s,\"signal\":%s,"
      "\"fingerprint\":\"%016llx\"}\n",
      report.backend.c_str(), report.n, report.sim_ms,
      static_cast<long long>(report.ticks_run), report.wall_ms,
      static_cast<long long>(report.transport.sent),
      static_cast<long long>(report.transport.delivered),
      static_cast<long long>(report.transport.dropped),
      static_cast<long long>(report.transport.duplicated),
      static_cast<long long>(report.transport.queue_drops),
      static_cast<long long>(report.transport.retries),
      static_cast<long long>(report.transport.sock_errors),
      static_cast<long long>(report.raises),
      static_cast<long long>(report.clears),
      static_cast<long long>(report.false_suspicions),
      static_cast<long long>(report.missed),
      static_cast<long long>(report.detection.count()),
      report.detection.count() > 0 ? report.detection.percentile(0.5) : 0.0,
      report.detection.count() > 0 ? report.detection.percentile(0.99) : 0.0,
      report.final_agreement ? "true" : "false", report.checkpoints_written,
      report.resumed ? "true" : "false",
      report.stopped_by_signal ? "true" : "false",
      static_cast<unsigned long long>(report.outcome_fingerprint));
  return 0;
}
