// Failure detector playground: tune a timeout-based detector against a
// simulated network and see the Chen-Toueg QoS metrics plus what the same
// configuration does inside a membership group.
//
//   ./fd_playground --detector=chen --alpha=200 \
//       --jitter=0.9 --loss=0.05 --hb=100 --crash-at=40000 [--seed=1]
//   ./fd_playground --detector=fixed --timeout=300
//   ./fd_playground --detector=phi --threshold=8
#include <cstdio>

#include "core/api.hpp"

using namespace rfd;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  rt::QosConfig config;
  const std::string kind = cli.get("detector", "chen");
  if (kind == "fixed") {
    config.detector.kind = rt::DetectorKind::kFixed;
    config.detector.fixed.timeout_ms = cli.get_double("timeout", 300.0);
  } else if (kind == "phi") {
    config.detector.kind = rt::DetectorKind::kPhi;
    config.detector.phi.threshold = cli.get_double("threshold", 8.0);
  } else {
    config.detector.kind = rt::DetectorKind::kChen;
    config.detector.chen.alpha_ms = cli.get_double("alpha", 200.0);
  }
  config.heartbeat_interval_ms = cli.get_double("hb", 100.0);
  config.network.jitter_sigma = cli.get_double("jitter", 0.9);
  config.network.loss_prob = cli.get_double("loss", 0.05);
  config.crash_at_ms = cli.get_double("crash-at", 40'000.0);
  config.duration_ms = cli.get_double("duration", 60'000.0);

  std::printf("detector=%s hb=%.0fms jitter=%.2f loss=%.0f%% crash@%.0fms\n",
              rt::detector_kind_name(config.detector.kind).c_str(),
              config.heartbeat_interval_ms, config.network.jitter_sigma,
              config.network.loss_prob * 100.0, config.crash_at_ms);

  const auto agg = rt::run_qos_sweep(config, seed, 10);
  std::printf("\nQoS over 10 runs (Chen-Toueg metrics):\n");
  std::printf("  detection time T_D : mean %.1f ms, p99 %.1f ms"
              " (%lld undetected)\n",
              agg.detection_time_ms.mean(),
              agg.detection_time_ms.percentile(0.99),
              static_cast<long long>(agg.undetected_crashes));
  std::printf("  mistake rate       : %.3f /min\n",
              agg.mistake_rate_per_s.mean() * 60.0);
  std::printf("  mistake duration   : %.1f ms\n",
              agg.avg_mistake_duration_ms.mean());
  std::printf("  query accuracy P_A : %.4f%%\n",
              agg.query_accuracy.mean() * 100.0);

  // The same detector inside a membership group: what the P-abstraction
  // costs at this tuning.
  rt::MembershipConfig membership;
  membership.n = 6;
  membership.detector = config.detector;
  membership.network = config.network;
  membership.heartbeat_interval_ms = config.heartbeat_interval_ms;
  membership.duration_ms = config.duration_ms;
  membership.crash_at_ms = std::vector<double>(6, -1.0);
  membership.crash_at_ms[4] = config.crash_at_ms;
  std::int64_t false_exclusions = 0;
  int accurate = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    const auto r = rt::run_membership_experiment(membership, seed + s);
    false_exclusions += r.false_exclusions;
    accurate += r.suspicions_accurate ? 1 : 0;
  }
  std::printf("\nmembership (n=6, 6 runs): %lld live nodes sacrificed;"
              " abstraction accurate in %d/6 runs\n",
              static_cast<long long>(false_exclusions), accurate);
  std::printf("\nEvery suspicion the group acts on 'turns out accurate' -\n"
              "because acting on it is what makes it accurate. That is the\n"
              "paper's Perfect-detector emulation in production clothes.\n");
  return 0;
}
