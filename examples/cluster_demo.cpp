// Demo: a 48-node gossip-monitored cluster surviving a bad afternoon.
//
// A scripted timeline throws a rack partition, a crash hidden inside it,
// a delay storm and some churn at a cluster whose only failure detectors
// are the paper's "realistic" ones - per-peer timeouts fed by gossiped
// heartbeat counters. Watch the cluster-level QoS that falls out: nobody
// waits for a Perfect detector, mistakes happen on schedule, and the
// membership still converges on the truth after every disruption.
//
//   ./cluster_demo [seed] [--scenario <file.scn>] [--trace <path|->]
//                  [--trace-every <ticks>] [--profile] [--shards <count>]
//
// --scenario replaces the built-in timeline with a scenario DSL file
// (see scenarios/ and src/cluster/scenario_dsl.hpp for the grammar);
// the file's config statement sets n/max_nodes/duration. --trace
// streams a JSONL event trace (heartbeats, suspicions, faults, drops;
// see the README's Observability section) to the given path, "-" for
// stdout. --trace-every interleaves a metrics snapshot record every
// that many check ticks (default 10 when tracing). --profile adds phase
// timer rollups to the end of the trace. --shards runs the sharded
// parallel core; every metric and trace byte is identical for any value
// (try it), only wall-clock changes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"
#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace rfd;
  const Cli cli(argc, argv);
  const std::uint64_t seed =
      !cli.positional().empty()
          ? std::strtoull(cli.positional()[0].c_str(), nullptr, 10)
          : 48;

  cluster::ClusterConfig config;
  config.n = 48;
  config.max_nodes = 52;
  config.topology.kind = cluster::TopologyKind::kGossip;
  config.topology.gossip_fanout = 3;
  config.topology.digest_size = 48;
  config.detector.kind = rt::DetectorKind::kPhi;
  config.detector.phi.threshold = 8.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = 60'000.0;

  config.obs.trace_path = cli.get("trace", "");
  config.obs.snapshot_every_ticks = static_cast<int>(
      cli.get_int("trace-every", config.obs.trace_path.empty() ? 0 : 10));
  config.obs.profile = cli.get_bool("profile", false);
  config.shards = static_cast<int>(cli.get_int("shards", 1));

  const std::string scenario_path = cli.get("scenario", "");
  if (!scenario_path.empty()) {
    cluster::ScenarioDoc doc;
    cluster::DslError err;
    if (!cluster::load_scenario_file(scenario_path, cluster::DslContext{},
                                     doc, err)) {
      std::fprintf(stderr, "cluster_demo: %s: %s\n", scenario_path.c_str(),
                   err.to_string().c_str());
      return 1;
    }
    if (doc.n > 0) config.n = doc.n;
    config.max_nodes =
        std::max({doc.max_nodes, config.n,
                  static_cast<int>(doc.max_node_ref) + 1});
    if (doc.duration_ms > 0.0) config.duration_ms = doc.duration_ms;
    config.topology.digest_size = config.n;
    config.scenario = std::move(doc.scenario);
    std::printf(
        "cluster_demo: scenario \"%s\" (%s)\n"
        "%d nodes (%d id slots), %.0fs, %zu fault events, gossip(f=3), "
        "phi-accrual detectors\n\n",
        doc.name.empty() ? "unnamed" : doc.name.c_str(),
        scenario_path.c_str(), config.n, config.max_nodes,
        config.duration_ms / 1000.0, config.scenario.events.size());
  } else {
    std::vector<cluster::NodeId> left, right;
    for (int i = 0; i < 48; ++i) (i < 24 ? left : right).push_back(i);

    config.scenario
        .crash(6'000.0, 17)                       //  6s: a node dies
        .partition(14'000.0, {left, right})       // 14s: rack cut in half
        .crash(18'000.0, 5)                       // 18s: ...hiding a crash
        .heal(24'000.0)                           // 24s: cut repaired
        .delay_storm(32'000.0, 40'000.0, 800.0, 0.6)  // 32s: congestion
        .join(44'000.0, 48)                       // 44s: capacity added
        .leave(48'000.0, 30);                     // 48s: silent decommission

    std::printf(
        "cluster_demo: 48 nodes, gossip(f=3), phi-accrual detectors,\n"
        "60s timeline: crash @6s, partition @14s, crash-in-partition @18s,\n"
        "heal @24s, delay storm 32-40s, join @44s, silent leave @48s\n\n");
  }

  // Ctrl-C finishes the current window, drains the trace ring and
  // prints the report over what ran, instead of dying with a torn trace.
  install_shutdown_handlers();
  config.stop = &shutdown_flag();

  const cluster::ClusterReport r = cluster::run_cluster(config, seed);
  if (shutdown_requested()) {
    std::fprintf(stderr,
                 "cluster_demo: interrupted at %.1fs simulated; report "
                 "covers the completed window\n",
                 r.duration_ms / 1000.0);
  }

  Table table({"metric", "value"});
  table.add_row({"messages/node/s", Table::fixed(r.messages_per_node_per_s, 1)});
  table.add_row({"digest entries/node/s",
                 Table::fixed(r.entries_per_node_per_s, 0)});
  table.add_row({"detection latency p50 (ms)",
                 Table::fixed(r.detection_latency_ms.percentile(0.5), 0)});
  table.add_row({"detection latency p99 (ms)",
                 Table::fixed(r.detection_latency_ms.percentile(0.99), 0)});
  table.add_row({"(observer, victim) detections",
                 Table::num(r.detection_latency_ms.count())});
  table.add_row({"missed detections", Table::num(r.missed_detections)});
  table.add_row({"false suspicions", Table::num(r.false_suspicions)});
  table.add_row({"disruptions converged",
                 Table::num(r.convergence_ms.count()) + "/" +
                     Table::num(r.disruptions)});
  table.add_row({"convergence mean (ms)",
                 r.convergence_ms.count() > 0
                     ? Table::fixed(r.convergence_ms.mean(), 0)
                     : "-"});
  table.add_row({"final agreement", Table::yes_no(r.final_agreement)});
  table.print("cluster QoS over the full timeline");

  if (!scenario_path.empty()) {
    std::printf("\n%s\n", r.summary().c_str());
  } else {
    std::printf(
      "\n%s\n\n"
      "The partition made both halves falsely suspect each other - the\n"
      "detectors are only <>P-grade and that is the paper's point - yet\n"
      "the freshness protocol refutes every false suspicion after heal,\n"
      "while the two real crashes and the silent leave stay detected by\n"
      "every live observer. Tune the phi threshold down and watch the\n"
      "false count climb; tune it up and watch detection slow: there is\n"
      "no setting that makes the detector Perfect, only settings that\n"
      "move the mistakes around.\n",
      r.summary().c_str());
  }
  if (!config.obs.trace_path.empty() && config.obs.trace_path != "-") {
    std::fprintf(stderr, "trace: %lld records -> %s (%lld dropped)\n",
                 static_cast<long long>(r.trace_records),
                 config.obs.trace_path.c_str(),
                 static_cast<long long>(r.trace_dropped));
  }
  for (const auto& stat : r.profile) {
    std::fprintf(stderr, "profile: %-8s calls=%lld est=%.2fms\n",
                 stat.phase.c_str(), static_cast<long long>(stat.calls),
                 stat.est_ms);
  }
  return 0;
}
