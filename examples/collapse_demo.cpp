// The collapse, end to end (the paper's Sections 3-6 in one sitting):
//
//   1. the Marabout passes for Strong yet flunks the realism check;
//   2. a (clairvoyant) Strong detector solves consensus with unbounded
//      crashes via the CT-S algorithm;
//   3. T(D->P) distills a Perfect detector out of any realistic detector
//      that solves consensus - live demo with detection timeline;
//   4. the emulated output(P) drives TRB, closing the circle:
//      "consensus solvable (realistically) => P => TRB".
//
//   ./collapse_demo [--n=4] [--seed=3]
#include <cstdio>

#include "core/api.hpp"

using namespace rfd;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<ProcessId>(cli.get_int("n", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  std::printf("== Step 1: realism audit (Section 3) ==\n");
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};
  for (const char* name : {"Marabout", "S(cheat)", "P"}) {
    const auto& spec = fd::find_detector(name);
    const auto report = fd::check_realism_suite(spec.factory, n, seeds);
    std::printf("  %-9s -> %s\n", name,
                report.realistic ? "realistic" : "NOT realistic (guesses the "
                                                 "future)");
  }

  std::printf("\n== Step 2: Strong solves consensus, unbounded crashes ==\n");
  {
    const auto pattern = model::all_but_one_crash(n, n - 1, 60);
    const auto oracle = fd::find_detector("S(cheat)").factory(pattern, seed);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    std::vector<Value> proposals;
    for (ProcessId p = 0; p < n; ++p) {
      proposals.push_back(100 + p);
      automata.push_back(std::make_unique<algo::CtStrongConsensus>(n, 100 + p));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(seed));
    sim.run_for(8000);
    const auto check = algo::check_consensus(sim.trace(), 0, proposals);
    std::printf("  %s with %d of %d crashed: %s\n",
                pattern.to_string().c_str(), n - 1, n,
                check.ok_uniform() ? "uniform consensus solved"
                                   : check.to_string().c_str());
  }

  std::printf("\n== Step 3: T(D->P) emulates Perfect (Lemma 4.2) ==\n");
  {
    const auto pattern = model::cascade(n, 2, 300, 500);
    const auto oracle = fd::find_detector("P").factory(pattern, seed);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(std::make_unique<red::ConsensusToP>(
          n, red::ConsensusToP::ct_strong_factory(n), 30, /*gap=*/200));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(seed + 1));
    sim.run_for(9000);
    std::printf("  pattern %s\n", pattern.to_string().c_str());
    for (ProcessId p = 0; p < n; ++p) {
      if (!pattern.correct().contains(p)) continue;
      const auto& r = dynamic_cast<red::ConsensusToP&>(sim.automaton(p));
      std::printf("  output(P)_%d = %s after %d instances;", p,
                  r.output().to_string().c_str(),
                  static_cast<int>(r.instances_decided()));
      for (const auto& [tick, victim] : r.suspicion_timeline()) {
        std::printf(" p%d@t%lld (crashed t%lld)", victim,
                    static_cast<long long>(tick),
                    static_cast<long long>(pattern.crash_tick(victim)));
      }
      std::printf("\n");
    }
  }

  std::printf("\n== Step 4: TRB on the emulated detector (Prop 5.1) ==\n");
  {
    const Value msg = 911;
    const auto pattern = model::single_crash(n, 1, 150);
    const auto oracle = fd::find_detector("P").factory(pattern, seed);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(std::make_unique<red::EmulatedFdStack>(
          n, red::ConsensusToP::ct_strong_factory(n), 40,
          [n, msg](ProcessId) {
            return std::make_unique<algo::TrbAutomaton>(n, /*sender=*/1, msg);
          },
          /*reduction_gap=*/150));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(seed + 2));
    sim.run_for(25'000);
    const auto check = algo::check_trb(sim.trace(), 0, 1, msg);
    std::printf("  sender p1 crashes at t=150; TRB over output(P): %s\n",
                check.ok() ? "spec holds" : check.to_string().c_str());
    for (const auto& d : sim.trace().deliveries()) {
      std::printf("  p%d delivered %s at t=%lld\n", d.process,
                  d.value == kNilValue ? "nil" : std::to_string(d.value).c_str(),
                  static_cast<long long>(d.time));
    }
  }

  std::printf("\nThe ladder collapsed: any realistic detector that solves\n"
              "consensus with unbounded crashes already hands you P - and P\n"
              "hands you terminating reliable broadcast.\n");
  return 0;
}
