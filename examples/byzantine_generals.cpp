// Byzantine Generals, crash-stop edition (Section 5): terminating reliable
// broadcast with a commander that may die mid-order.
//
//   ./byzantine_generals [--n=5] [--commander=0] [--crash-at=30] [--seed=2]
//
// The commander broadcasts ATTACK. If it crashes before anyone hears the
// order, the lieutenants must all agree on nil ("no order issued") rather
// than some attacking and some not - the exact agreement TRB provides,
// and the reason it needs a Perfect failure detector: a lieutenant that
// wrongly gives up on a live commander would retreat alone.
#include <cstdio>
#include <string>

#include "core/api.hpp"

using namespace rfd;

namespace {

constexpr Value kAttack = 1;

std::string order_name(Value v) {
  if (v == kAttack) return "ATTACK";
  if (v == kNilValue) return "no order (commander presumed dead)";
  return "order " + std::to_string(v);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<ProcessId>(cli.get_int("n", 5));
  const auto commander = static_cast<ProcessId>(cli.get_int("commander", 0));
  const Tick crash_at = cli.get_int("crash-at", 30);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2));

  model::FailurePattern pattern(n);
  if (crash_at >= 0) pattern.crash_at(commander, crash_at);

  std::printf("generals: %d, commander p%d%s\n", n, commander,
              crash_at >= 0
                  ? (" (falls at t=" + std::to_string(crash_at) + ")").c_str()
                  : "");

  const auto oracle = fd::find_detector("P").factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(
        std::make_unique<algo::TrbAutomaton>(n, commander, kAttack));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(seed + 1));
  sim.run_for(9000);

  const sim::Trace& trace = sim.trace();
  for (const auto& d : trace.deliveries()) {
    std::printf("  lieutenant p%d concludes: %s (t=%lld)\n", d.process,
                order_name(d.value).c_str(), static_cast<long long>(d.time));
  }

  const auto check = algo::check_trb(trace, 0, commander, kAttack);
  std::printf("verdict : %s\n", check.ok()
                                    ? "all surviving generals agree"
                                    : check.to_string().c_str());

  // Count the outcomes among survivors.
  int attack = 0, nil = 0;
  pattern.correct().for_each([&](ProcessId p) {
    const auto d = trace.delivery_of(p, 0);
    if (!d) return;
    if (d->value == kAttack) ++attack;
    if (d->value == kNilValue) ++nil;
  });
  std::printf("outcome : %d attack, %d stand down - %s\n", attack, nil,
              (attack == 0 || nil == 0) ? "the army moves as one"
                                        : "DISASTER (split army)");
  return check.ok() && (attack == 0 || nil == 0) ? 0 : 1;
}
